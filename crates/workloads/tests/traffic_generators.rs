//! Property tests for the production-shaped traffic generators: the Zipf
//! sampler really produces the configured popularity law, the hot-set
//! mass matches the analytic harmonic sums, and both families are
//! deterministic functions of their seed.

use coma_types::{Rng64, ZipfSampler};
use coma_workloads::{AppId, Op, OpArena, Scale};

/// Empirical rank frequencies from `draws` samples over `0..n`.
fn rank_counts(n: usize, s: f64, seed: u64, draws: usize) -> Vec<u64> {
    let z = ZipfSampler::new(n, s);
    let mut rng = Rng64::new(seed);
    let mut counts = vec![0u64; n];
    for _ in 0..draws {
        counts[z.sample(&mut rng)] += 1;
    }
    counts
}

/// Least-squares slope of ln(freq) against ln(rank) over the top ranks,
/// which for a Zipf(s) law is −s.
fn log_log_slope(counts: &[u64], top: usize) -> f64 {
    let pts: Vec<(f64, f64)> = counts
        .iter()
        .take(top)
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let (sx, sy): (f64, f64) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy): (f64, f64) = pts
        .iter()
        .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Analytic mass of the top `k` ranks: Σ_{i≤k} i^−s / Σ_{i≤n} i^−s.
fn zipf_head_mass(n: usize, s: f64, k: usize) -> f64 {
    let sum = |m: usize| (1..=m).map(|i| (i as f64).powf(-s)).sum::<f64>();
    sum(k) / sum(n)
}

#[test]
fn zipf_rank_frequency_slope_matches_exponent() {
    const N: usize = 2048;
    const DRAWS: usize = 300_000;
    for (seed, s) in [(11u64, 0.8f64), (12, 1.0), (13, 1.2)] {
        let counts = rank_counts(N, s, seed, DRAWS);
        let slope = log_log_slope(&counts, 50);
        assert!(
            (slope + s).abs() < 0.12,
            "s={s}: fitted slope {slope}, expected {}",
            -s
        );
    }
}

#[test]
fn zipf_hot_set_mass_matches_harmonic_sums() {
    const N: usize = 2048;
    const DRAWS: usize = 300_000;
    for (seed, s) in [(21u64, 0.8f64), (22, 1.0), (23, 1.2)] {
        let counts = rank_counts(N, s, seed, DRAWS);
        for k in [16usize, 64, 256] {
            let got = counts.iter().take(k).sum::<u64>() as f64 / DRAWS as f64;
            let want = zipf_head_mass(N, s, k);
            assert!(
                (got - want).abs() < 0.02,
                "s={s} top-{k}: empirical mass {got:.4}, analytic {want:.4}"
            );
        }
    }
}

#[test]
fn zipf_head_mass_grows_with_exponent() {
    const N: usize = 2048;
    let mass = |s: f64, seed: u64| {
        rank_counts(N, s, seed, 100_000)
            .iter()
            .take(64)
            .sum::<u64>()
    };
    let (m08, m10, m12) = (mass(0.8, 31), mass(1.0, 32), mass(1.2, 33));
    assert!(
        m08 < m10 && m10 < m12,
        "head mass not monotone: {m08} {m10} {m12}"
    );
}

/// Drain every stream of a freshly built workload into one flat op list.
fn all_ops(app: AppId, seed: u64) -> Vec<(usize, Op)> {
    let mut wl = app.build(4, seed, Scale::SMOKE);
    let mut v = Vec::new();
    for (p, s) in wl.streams.iter_mut().enumerate() {
        while let Some(op) = s.next_op() {
            v.push((p, op));
        }
    }
    v
}

#[test]
fn traffic_streams_are_deterministic_in_the_seed() {
    for app in AppId::TRAFFIC {
        assert_eq!(
            all_ops(app, 42),
            all_ops(app, 42),
            "{app}: same seed must give an identical op stream"
        );
        assert_ne!(
            all_ops(app, 42),
            all_ops(app, 43),
            "{app}: different seeds should differ"
        );
    }
}

#[test]
fn traffic_compiled_arenas_are_byte_identical_across_builds() {
    for app in AppId::TRAFFIC {
        let a = OpArena::compile(app.build(4, 7, Scale::SMOKE).streams);
        let b = OpArena::compile(app.build(4, 7, Scale::SMOKE).streams);
        assert_eq!(a.records(), b.records(), "{app}: compiled bytes diverge");
        assert!(a.len() > 1_000, "{app}: suspiciously short trace");
    }
}
