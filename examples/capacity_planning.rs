//! Capacity planning: the paper's motivating trade-off, as a tool.
//!
//! A COMA operator chooses a memory pressure (how much attraction memory
//! to provision beyond the working set) and a clustering degree. This
//! example sweeps both for one application and prints execution time and
//! memory overhead, so you can pick the cheapest configuration within a
//! slowdown budget — the paper's conclusion ("application execution can
//! remain efficient at higher memory pressure in clustered systems")
//! falls straight out of the table.
//!
//! ```sh
//! cargo run --release --example capacity_planning [app]
//! ```

use coma::prelude::*;
use coma::stats::Table;

fn main() {
    let app: AppId = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("unknown application"))
        .unwrap_or(AppId::OceanNon);

    println!("Capacity planning for {app} (16 processors, doubled DRAM bandwidth)\n");

    // Baseline: single-processor nodes at the paper's 50% MP.
    let run = |ppn: usize, mp: MemoryPressure| {
        let mut params = SimParams::default();
        params.machine.procs_per_node = ppn;
        params.machine.memory_pressure = mp;
        params.latency = LatencyConfig::paper_double_dram();
        let wl = app.build(16, 42, Scale::BENCH);
        run_simulation(wl, &params).exec_time_ns
    };
    let base = run(1, MemoryPressure::MP_50) as f64;

    let mut t = Table::new(vec![
        "memory pressure",
        "memory overhead",
        "1 proc/node",
        "2 procs/node",
        "4 procs/node",
    ]);
    for mp in MemoryPressure::PAPER_SWEEP {
        let overhead = 1.0 / mp.as_f64() - 1.0;
        let mut cells = vec![mp.to_string(), format!("+{:.0}% DRAM", overhead * 100.0)];
        for ppn in [1usize, 2, 4] {
            let time = run(ppn, mp) as f64;
            cells.push(format!("{:.0}%", time / base * 100.0));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!("execution time relative to 1 proc/node at 50% MP = 100%");
    println!("memory overhead = attraction memory provisioned beyond one working-set copy");
}
