//! Custom workload: implement your own `OpStream` and run it on the
//! simulated machine. Here: a classic ping-pong microbenchmark — two
//! processors alternately write and read one line, guarded by a lock —
//! showing how clustering internalizes producer-consumer communication.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use coma::prelude::*;
use coma::types::Addr;
use coma::workloads::{Op, OpStream};

/// Each round: acquire the lock, update the shared line, release; spin
/// processors that don't participate just compute.
struct PingPong {
    me: usize,
    rounds: u32,
    emitted: std::collections::VecDeque<Op>,
    round: u32,
}

impl PingPong {
    fn new(me: usize, rounds: u32) -> Self {
        PingPong {
            me,
            rounds,
            emitted: Default::default(),
            round: 0,
        }
    }
}

const SHARED_LINE: Addr = Addr(0);

impl OpStream for PingPong {
    fn next_op(&mut self) -> Option<Op> {
        if let Some(op) = self.emitted.pop_front() {
            return Some(op);
        }
        if self.round >= self.rounds {
            return None;
        }
        self.round += 1;
        if self.me < 2 {
            // The two ping-pong players.
            self.emitted.extend([
                Op::Lock(0),
                Op::Read(SHARED_LINE),
                Op::Compute(50),
                Op::Write(SHARED_LINE),
                Op::Unlock(0),
                Op::Compute(100),
            ]);
        } else {
            // Bystanders: private work only.
            let private = Addr(4096 + (self.me as u64) * 4096);
            self.emitted
                .extend([Op::Compute(150), Op::Read(private), Op::Write(private)]);
        }
        self.emitted.pop_front()
    }
}

fn build(rounds: u32) -> Workload {
    Workload {
        name: "ping-pong",
        ws_bytes: 17 * 4096,
        n_locks: 1,
        streams: (0..16)
            .map(|me| Box::new(PingPong::new(me, rounds)) as Box<dyn OpStream>)
            .collect(),
    }
}

fn main() {
    println!("Ping-pong microbenchmark: procs 0 and 1 alternate on one line.\n");
    println!(
        "{:<14} {:>14} {:>12} {:>10}",
        "clustering", "exec time (µs)", "bus bytes", "RNMr"
    );
    for ppn in [1usize, 2, 4] {
        let mut params = SimParams::default();
        params.machine.procs_per_node = ppn;
        params.machine.memory_pressure = MemoryPressure::MP_6;
        // The tiny working set would make the SLC degenerate; widen it.
        params.machine.slc_ws_ratio = 16;
        let report = run_simulation(build(3000), &params);
        println!(
            "{:<14} {:>14.1} {:>12} {:>9.2}%",
            format!("{} per node", ppn),
            report.exec_time_ns as f64 / 1e3,
            report.traffic.total_bytes(),
            report.rnm_rate() * 100.0
        );
    }
    println!(
        "\nWith 2+ processors per node the ping-pong pair shares an attraction\n\
         memory, so the line never crosses the global bus — the communication\n\
         is internalized exactly as the paper describes for coherence misses."
    );
}
