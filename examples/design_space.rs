//! Design-space exploration with the parameterized synthetic workload:
//! where does *your* application land in the paper's figures?
//!
//! This sweeps the replication-demand axis (the fraction of the working
//! set that is globally read-shared) and shows how it decides whether
//! clustering keeps helping at very high memory pressure — the boundary
//! between the paper's Figure 3 and Figure 4 application groups.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use coma::prelude::*;
use coma::stats::Table;
use coma::workloads::{build_synth, SynthSpec};

fn main() {
    println!("Synthetic design-space sweep: replication demand vs clustering payoff");
    println!("(16 processors, 87.5% memory pressure, 4-way AMs)\n");

    let mut t = Table::new(vec![
        "shared fraction",
        "1p traffic (KB)",
        "4p traffic (KB)",
        "4p/1p",
        "verdict",
    ]);
    for shared_pct in [0u32, 20, 40, 60, 80] {
        let run = |ppn: usize| {
            let spec = SynthSpec {
                shared_frac: shared_pct as f64 / 100.0,
                shared_ref_frac: 0.35 + shared_pct as f64 / 200.0,
                zipf_s: 0.2,
                iters: 6,
                ..Default::default()
            };
            let wl = build_synth(16, 42, Scale::BENCH, spec);
            let mut params = SimParams::default();
            params.machine.procs_per_node = ppn;
            params.machine.memory_pressure = MemoryPressure::MP_87;
            run_simulation(wl, &params).traffic.total_bytes()
        };
        let t1 = run(1);
        let t4 = run(4);
        let ratio = t4 as f64 / t1 as f64;
        t.row(vec![
            format!("{shared_pct}%"),
            format!("{}", t1 / 1024),
            format!("{}", t4 / 1024),
            format!("{:.2}", ratio),
            if ratio < 0.6 {
                "clustering wins big (Fig. 3 territory)".to_string()
            } else if ratio < 0.95 {
                "clustering still helps".to_string()
            } else {
                "clustering no longer helps (Fig. 4 territory)".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "The more of the working set every node wants to replicate, the less\n\
         a shared attraction memory can do at very high memory pressure —\n\
         the axis separating the paper's Figure 3 and Figure 4 groups."
    );
}
