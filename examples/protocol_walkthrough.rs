//! Protocol walkthrough: drive the coherence engine directly and watch a
//! cache line move through the COMA states — allocation, replication,
//! ownership transfer, and finally an accept-based injection when its
//! home set fills up.
//!
//! ```sh
//! cargo run --example protocol_walkthrough
//! ```

use coma::cache::{AcceptPolicy, VictimPolicy};
use coma::protocol::CoherenceEngine;
use coma::types::{LineNum, MachineConfig, MemoryPressure, ProcId};

fn states(e: &CoherenceEngine, line: LineNum) -> String {
    (0..e.geometry().n_nodes)
        .map(|n| format!("N{n}:{}", e.node(n).am.state(line)))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    // A small 4-node machine at high memory pressure so replacements are
    // easy to provoke.
    let cfg = MachineConfig {
        n_procs: 4,
        procs_per_node: 1,
        memory_pressure: MemoryPressure::MP_87,
        ..Default::default()
    };
    let geom = cfg.geometry(64 * 1024).unwrap();
    let mut e = CoherenceEngine::new(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
    );
    let line = LineNum(5);

    println!("4 nodes, 87.5% memory pressure, watching line {line:?}\n");

    println!("P0 reads  → on-demand page allocation, Exclusive at node 0");
    let out = e.read(ProcId(0), line);
    println!("   level={:?}   [{}]\n", out.level, states(&e, line));

    println!("P2 reads  → remote fill; node 0 downgrades to Owner, node 2 gets Shared");
    let out = e.read(ProcId(2), line);
    println!("   level={:?}   [{}]\n", out.level, states(&e, line));

    println!("P3 reads  → another replica");
    e.read(ProcId(3), line);
    println!("   [{}]\n", states(&e, line));

    println!("P1 writes → global upgrade: every other copy invalidated, node 1 Exclusive");
    let out = e.write(ProcId(1), line);
    println!(
        "   level={:?} upgrade={} rex={}   [{}]\n",
        out.level,
        out.upgrade,
        out.read_exclusive,
        states(&e, line)
    );

    println!("P0 reads again → node 1 becomes Owner, node 0 a Shared replica");
    e.read(ProcId(0), line);
    println!("   [{}]\n", states(&e, line));

    // Now force node 1 to evict the line: write conflicting lines that map
    // to the same AM set until the Owner copy is displaced.
    println!("P1 fills its AM set with conflicting lines until line {line:?} is displaced…");
    let sets = e.geometry().am_sets;
    let mut k = 1u64;
    loop {
        let conflict = LineNum(line.0 + k * sets);
        let out = e.write(ProcId(1), conflict);
        if out.ownership_migrated || out.injected_to.is_some() {
            if out.ownership_migrated {
                println!("   → ownership migrated to an existing replica (no data moved)");
            } else {
                println!("   → injected into node {:?}", out.injected_to.unwrap());
            }
            break;
        }
        k += 1;
        assert!(k < 64, "no displacement triggered");
    }
    println!("   [{}]\n", states(&e, line));

    let info = e.directory().get(line).expect("line survives replacement");
    println!(
        "directory: owner={:?}, {} sharer(s) — the responsible copy survived the eviction,",
        info.owner,
        info.n_sharers()
    );
    println!("exactly as the accept-based replacement strategy guarantees.");

    e.check_invariants().expect("protocol invariants hold");
    println!("\nprotocol invariants verified ✓");
}
