//! Quickstart: simulate one SPLASH-2-analogue application on the paper's
//! 16-processor bus-based COMA and print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart [app] [procs_per_node]
//! ```

use coma::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let app: AppId = args
        .next()
        .map(|s| s.parse().expect("unknown application"))
        .unwrap_or(AppId::Fft);
    let ppn: usize = args
        .next()
        .map(|s| s.parse().expect("procs_per_node must be 1, 2 or 4"))
        .unwrap_or(4);

    let mut params = SimParams::default();
    params.machine.procs_per_node = ppn;
    params.machine.memory_pressure = MemoryPressure::MP_50;

    println!(
        "Simulating {app} on 16 processors ({ppn} per node, {} nodes) at {} memory pressure…",
        16 / ppn,
        params.machine.memory_pressure
    );
    let workload = app.build(16, 42, Scale::BENCH);
    println!(
        "working set: {} KB  (SLC {} KB/processor, AM {} KB/node)",
        workload.ws_bytes / 1024,
        workload.ws_bytes / 128 / 1024,
        params
            .machine
            .memory_pressure
            .total_am_bytes(workload.ws_bytes)
            / 16
            * ppn as u64
            / 1024,
    );

    let report = run_simulation(workload, &params);

    println!(
        "\nsimulated execution time : {:>10.3} ms",
        report.exec_time_ns as f64 / 1e6
    );
    println!(
        "reads / writes           : {:>10} / {}",
        report.counts.total_reads(),
        report.counts.total_writes()
    );
    println!(
        "read node miss rate      : {:>9.3} %",
        report.rnm_rate() * 100.0
    );
    println!(
        "bus traffic              : {:>10} bytes  (read {} / write {} / replace {})",
        report.traffic.total_bytes(),
        report.traffic.read_bytes,
        report.traffic.write_bytes,
        report.traffic.replace_bytes
    );
    println!(
        "bus utilization          : {:>9.1} %",
        report.bus_utilization() * 100.0
    );
    println!(
        "injections / migrations  : {:>10} / {}",
        report.injections, report.ownership_migrations
    );

    let b = report.avg_breakdown();
    let f = b.fractions();
    println!(
        "time breakdown           :   busy {:.1}%  SLC {:.1}%  AM {:.1}%  remote {:.1}%",
        f[0] * 100.0,
        f[1] * 100.0,
        f[2] * 100.0,
        f[3] * 100.0
    );
}
