#!/usr/bin/env bash
# The CI gate: formatting, lints, then the tier-1 offline build + test.
# Everything must pass with no network access (the workspace has no
# external dependencies, so the registry is never consulted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> sweep smoke: parallel sweep must be byte-identical to serial"
COMA_SCALE=smoke COMA_THREADS=4 cargo test -q --offline -p coma --test sweep_determinism

echo "==> protocol verification smoke: bounded model check + 10k fuzz ops"
cargo run --release --offline -p coma-verify -- --smoke

echo "==> hierarchy smoke: 64-proc 2-level machine end to end"
# A hierarchical config through the CLI (validate + route-aware timing
# walk) and one tree-vs-flat sweep cell through the cached sweep engine.
cargo run --release --offline -p coma-cli --bin coma -- \
  run --app fft --procs 64 --ppn 4 --groups 4 --scale smoke
COMA_SCALE=smoke COMA_OUT=$(mktemp -d) \
  cargo run --release --offline -p coma-experiments --bin hierarchy -- --smoke

echo "==> bench smoke: one iteration per case, output must validate"
# The bench overwrites the tracked baseline, so park it and put it back:
# the smoke run only proves the harness works end to end.
baseline=$(mktemp)
cp BENCH_sim.json "$baseline"
cargo bench -p coma-bench --bench perf --offline -- --iters 1
grep -q '"schema": "coma-bench-sim/1"' BENCH_sim.json
grep -q '"cases": \[' BENCH_sim.json
mv "$baseline" BENCH_sim.json

echo "OK: all checks passed"
