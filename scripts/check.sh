#!/usr/bin/env bash
# The CI gate: formatting, lints, then the tier-1 offline build + test.
# Everything must pass with no network access (the workspace has no
# external dependencies, so the registry is never consulted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "OK: all checks passed"
