#!/usr/bin/env bash
# The CI gate: formatting, lints, then the tier-1 offline build + test.
# Everything must pass with no network access (the workspace has no
# external dependencies, so the registry is never consulted).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (workspace, all targets, -D warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release --offline
cargo test -q --offline

echo "==> sweep smoke: parallel sweep must be byte-identical to serial"
COMA_SCALE=smoke COMA_THREADS=4 cargo test -q --offline -p coma --test sweep_determinism

echo "==> protocol verification smoke: bounded model check + 10k fuzz ops"
cargo run --release --offline -p coma-verify -- --smoke

echo "==> hierarchy smoke: 64-proc 2-level machine end to end"
# A hierarchical config through the CLI (validate + route-aware timing
# walk) and one tree-vs-flat sweep cell through the cached sweep engine.
cargo run --release --offline -p coma-cli --bin coma -- \
  run --app fft --procs 64 --ppn 4 --groups 4 --scale smoke
COMA_SCALE=smoke COMA_OUT=$(mktemp -d) \
  cargo run --release --offline -p coma-experiments --bin hierarchy -- --smoke

echo "==> traffic smoke: both production-traffic families through the sweep"
# The kv_zipf + graph_bfs corner matrix (two pressures, two clustering
# degrees, COMA vs the NUMA anchors) through the cached sweep engine,
# producing the traffic csv/svg into a scratch dir.
COMA_SCALE=smoke COMA_OUT=$(mktemp -d) \
  cargo run --release --offline -p coma-experiments --bin traffic -- --smoke

echo "==> bench + perf guard: 3 iterations per case, minima vs baseline"
# The bench overwrites the tracked baseline, so park it first. Three
# iterations give a usable per-case minimum (the least noise-contaminated
# estimate of a deterministic simulation's cost); the guard then fails
# the gate if any tracked case's fresh min_ns regressed more than 10%
# past the committed BENCH_sim.json. Override the tolerance with
# PERF_TOLERANCE_PCT for known-noisy machines.
baseline=$(mktemp)
cp BENCH_sim.json "$baseline"
cargo bench -p coma-bench --bench perf --offline -- --iters 3
grep -q '"schema": "coma-bench-sim/1"' BENCH_sim.json
grep -q '"cases": \[' BENCH_sim.json
cargo run --release --offline -p coma-bench --bin perf_guard -- \
  "$baseline" BENCH_sim.json --tolerance-pct "${PERF_TOLERANCE_PCT:-10}"
mv "$baseline" BENCH_sim.json

echo "OK: all checks passed"
