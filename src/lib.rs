//! # coma — cluster-based COMA multiprocessor simulator
//!
//! A from-scratch reproduction of *Landin & Karlgren, "A Study of the
//! Efficiency of Shared Attraction Memories in Cluster-Based COMA
//! Multiprocessors"* (IPPS 1997): a 16-processor bus-based COMA with
//! 1/2/4 processors per node sharing each attraction memory, driven by
//! synthetic SPLASH-2-analogue workloads.
//!
//! This façade re-exports the public API of the workspace crates:
//!
//! * [`sim`] — build and run whole-machine simulations;
//! * [`workloads`] — the 14-application catalog and generator framework;
//! * [`types`] — machine/latency configuration and memory pressure;
//! * [`stats`] — reports: RNMr, traffic decomposition, time breakdowns;
//! * [`cache`], [`protocol`], [`timing`] — the underlying substrates.
//!
//! ```
//! use coma::prelude::*;
//!
//! let mut params = SimParams::default();
//! params.machine.procs_per_node = 4;                 // 4-way clustering
//! params.machine.memory_pressure = MemoryPressure::MP_81;
//! params.latency = LatencyConfig::paper_double_dram();
//!
//! let workload = AppId::WaterSp.build(16, 42, Scale::SMOKE);
//! let report = run_simulation(workload, &params);
//! println!("RNMr = {:.3}%", report.rnm_rate() * 100.0);
//! ```

pub use coma_cache as cache;
pub use coma_protocol as protocol;
pub use coma_sim as sim;
pub use coma_stats as stats;
pub use coma_timing as timing;
pub use coma_types as types;
pub use coma_workloads as workloads;

/// Everything needed for typical experiments.
pub mod prelude {
    pub use coma_sim::{run_simulation, MemoryModel, SimParams, Simulation};
    pub use coma_stats::{ExecBreakdown, SimReport, Table, Traffic};
    pub use coma_types::{
        full_replication_threshold, LatencyConfig, MachineConfig, MemoryPressure,
    };
    pub use coma_workloads::{AppId, Scale, Workload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_runs_a_simulation() {
        let params = SimParams::default();
        let wl = AppId::WaterN2.build(16, 1, Scale::SMOKE);
        let r = run_simulation(wl, &params);
        assert!(r.exec_time_ns > 0);
    }
}
