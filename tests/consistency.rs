//! Cross-crate consistency: determinism, accounting identities, and
//! protocol invariants after complete application runs.

use coma::prelude::*;
use coma::sim::Simulation;

fn params(ppn: usize, mp: MemoryPressure) -> SimParams {
    let mut p = SimParams::default();
    p.machine.procs_per_node = ppn;
    p.machine.memory_pressure = mp;
    p
}

/// Bit-exact determinism of full runs.
#[test]
fn full_runs_are_deterministic() {
    for app in [AppId::Radiosity, AppId::Radix, AppId::Cholesky] {
        let run = || {
            let r = run_simulation(
                app.build(16, 7, Scale::SMOKE),
                &params(2, MemoryPressure::MP_81),
            );
            (r.exec_time_ns, r.counts, r.traffic, r.injections)
        };
        assert_eq!(run(), run(), "{app} not deterministic");
    }
}

/// Different seeds produce different (but valid) executions.
#[test]
fn seeds_change_executions() {
    let r1 = run_simulation(
        AppId::Raytrace.build(16, 1, Scale::SMOKE),
        &params(1, MemoryPressure::MP_50),
    );
    let r2 = run_simulation(
        AppId::Raytrace.build(16, 2, Scale::SMOKE),
        &params(1, MemoryPressure::MP_50),
    );
    assert_ne!(r1.exec_time_ns, r2.exec_time_ns);
}

/// Read accounting: every read lands in exactly one level bucket, and the
/// RNMr equals remote reads over all reads.
#[test]
fn read_accounting_identity() {
    let r = run_simulation(
        AppId::Fmm.build(16, 3, Scale::SMOKE),
        &params(4, MemoryPressure::MP_75),
    );
    let total: u64 = r.counts.reads.iter().sum();
    assert_eq!(total, r.counts.total_reads());
    let rnm = r.counts.read_node_misses() as f64 / total as f64;
    assert!((rnm - r.rnm_rate()).abs() < 1e-12);
}

/// Per-processor accounted time never exceeds the run's wall clock, and
/// busy time is positive for every processor.
#[test]
fn time_accounting_bounds() {
    let r = run_simulation(
        AppId::Barnes.build(16, 5, Scale::SMOKE),
        &params(2, MemoryPressure::MP_50),
    );
    assert_eq!(r.per_proc.len(), 16);
    for (i, b) in r.per_proc.iter().enumerate() {
        assert!(b.busy_ns > 0, "proc {i} never busy");
        assert!(
            b.total_ns() <= r.exec_time_ns,
            "proc {i} accounted {} > exec {}",
            b.total_ns(),
            r.exec_time_ns
        );
    }
}

/// Protocol invariants hold at the end of every application's run, at the
/// nastiest memory pressure, and the OS capacity guarantee (no page-outs
/// below 100 % MP) is respected.
#[test]
fn protocol_invariants_after_every_app() {
    for app in AppId::ALL {
        let sim = Simulation::new(
            app.build(16, 11, Scale::SMOKE),
            &params(4, MemoryPressure::MP_87),
        )
        .unwrap();
        let report = sim
            .run_checked()
            .unwrap_or_else(|e| panic!("{app}: invariant violated: {e}"));
        assert_eq!(
            report.traffic.pageouts, 0,
            "{app}: pageouts at 87.5% MP — capacity guarantee violated"
        );
    }
}

/// Traffic identities: byte totals decompose exactly into the three
/// segments, and transaction counts are consistent.
#[test]
fn traffic_identities() {
    let r = run_simulation(
        AppId::LuCont.build(16, 9, Scale::SMOKE),
        &params(1, MemoryPressure::MP_87),
    );
    let t = &r.traffic;
    assert_eq!(
        t.total_bytes(),
        t.read_bytes + t.write_bytes + t.replace_bytes
    );
    assert_eq!(t.total_txns(), t.read_txns + t.write_txns + t.replace_txns);
    assert!(t.read_txns > 0 && t.replace_txns > 0);
}

/// The bus is the only path between nodes: with one node (16 procs per
/// node) there must be no global traffic at all.
#[test]
fn single_node_machine_never_uses_bus() {
    let mut p = params(16, MemoryPressure::MP_50);
    p.machine.procs_per_node = 16;
    let r = run_simulation(AppId::Fft.build(16, 4, Scale::SMOKE), &p);
    assert_eq!(r.traffic.total_txns(), 0);
    assert_eq!(r.counts.read_node_misses(), 0);
    assert!(r.exec_time_ns > 0);
}

/// Workload scaling: longer scales mean strictly more references and
/// longer executions.
#[test]
fn scale_monotonicity() {
    let refs = |scale| {
        let r = run_simulation(
            AppId::WaterSp.build(16, 6, scale),
            &params(1, MemoryPressure::MP_50),
        );
        (r.counts.total_reads(), r.exec_time_ns)
    };
    let (small_refs, small_t) = refs(Scale::SMOKE);
    let (big_refs, big_t) = refs(Scale::BENCH);
    assert!(big_refs > small_refs);
    assert!(big_t > small_t);
}
