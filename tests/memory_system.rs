//! The layering contract: every memory architecture runs through the
//! same `dyn MemorySystem` surface, and the refactor that introduced it
//! changed no numbers — a golden regression pins the exact RNMr and
//! traffic totals captured before the engines moved behind the trait.

use coma::protocol::{BaselineEngine, BaselineKind, CoherenceEngine, MemorySystem};
use coma::sim::{run_simulation, InterconnectKind, MemoryModel, SimParams, Simulation};
use coma::types::{LineNum, MachineConfig, MemoryPressure, ProcId, Rng64};
use coma::workloads::{AppId, Scale};

fn all_systems() -> Vec<(&'static str, Box<dyn MemorySystem>)> {
    let cfg = MachineConfig {
        n_procs: 8,
        procs_per_node: 2,
        memory_pressure: MemoryPressure::MP_75,
        ..Default::default()
    };
    let geom = cfg.geometry(128 * 1024).unwrap();
    vec![
        (
            "coma",
            Box::new(CoherenceEngine::new(
                geom,
                coma::cache::VictimPolicy::SharedFirst,
                coma::cache::AcceptPolicy::InvalidThenShared,
                true,
            )) as Box<dyn MemorySystem>,
        ),
        (
            "numa",
            Box::new(BaselineEngine::new(geom, BaselineKind::Numa)),
        ),
        (
            "uma",
            Box::new(BaselineEngine::new(geom, BaselineKind::Uma)),
        ),
    ]
}

/// The same synthetic trace drives every engine through the trait
/// object: all invariants hold, every read is eventually node-local
/// once cached, and traffic only ever grows.
#[test]
fn trait_object_smoke_all_architectures() {
    for (name, mut m) in all_systems() {
        let mut rng = Rng64::new(0xD15C);
        let mut last_bytes = 0;
        for i in 0..10_000 {
            let p = ProcId(rng.below(8) as u16);
            let l = LineNum(rng.below(1200));
            if rng.chance(0.35) {
                m.write(p, l);
            } else {
                m.read(p, l);
            }
            m.flush_stats();
            let bytes = m.traffic().total_bytes();
            assert!(bytes >= last_bytes, "{name}: traffic shrank at op {i}");
            last_bytes = bytes;
        }
        m.check_invariants()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // A cached line is served without touching the bus.
        m.read(ProcId(0), LineNum(7));
        m.flush_stats();
        let before = m.traffic().total_txns();
        m.read(ProcId(0), LineNum(7));
        m.flush_stats();
        assert_eq!(m.traffic().total_txns(), before, "{name}: rehit used bus");
    }
}

/// An externally built engine runs under the standard driver via
/// `Simulation::with_memory`, and the driver can hand it back.
#[test]
fn simulation_accepts_external_memory_system() {
    let params = SimParams::default();
    let wl = AppId::WaterSp.build(16, 8, Scale::SMOKE);
    let geom = params.machine.geometry(wl.ws_bytes).unwrap();
    let mem: Box<dyn MemorySystem> = Box::new(BaselineEngine::new(geom, BaselineKind::Numa));
    let sim = Simulation::with_memory(wl, &params, mem);
    assert!(sim.engine().is_none(), "baseline downcast to COMA engine");
    let r = sim.run_checked().expect("invariants hold");
    assert!(r.exec_time_ns > 0);
    assert_eq!(r.injections, 0, "baselines never inject");
}

/// The ideal (contention-free) interconnect can only make execution
/// faster, and leaves the protocol-side numbers untouched.
#[test]
fn ideal_interconnect_is_a_lower_bound() {
    let run = |kind| {
        let mut params = SimParams::default();
        params.machine.procs_per_node = 2;
        params.machine.memory_pressure = MemoryPressure::MP_81;
        params.interconnect = kind;
        run_simulation(AppId::Fft.build(16, 42, Scale::SMOKE), &params)
    };
    let bus = run(InterconnectKind::SnoopingBus);
    let ideal = run(InterconnectKind::Ideal);
    assert!(
        ideal.exec_time_ns <= bus.exec_time_ns,
        "removing contention slowed execution: {} > {}",
        ideal.exec_time_ns,
        bus.exec_time_ns
    );
    // The simulation is timing-coupled, so removing contention perturbs
    // the interleaving slightly — but the protocol work is the same to
    // within a fraction of a percent.
    let (a, b) = (ideal.traffic.total_bytes(), bus.traffic.total_bytes());
    assert!(
        (a as f64 - b as f64).abs() / (b as f64) < 0.01,
        "interconnect changed protocol traffic: {a} vs {b}"
    );
    assert_eq!(ideal.counts.total_reads(), bus.counts.total_reads());
    assert_eq!(ideal.counts.total_writes(), bus.counts.total_writes());
}

fn golden_params() -> SimParams {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 2;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    params
}

/// Byte-identical COMA totals, captured on the pre-refactor engine
/// (FFT, 16 procs, seed 42, SMOKE, 2 procs/node, 81.25% MP). Any
/// change here means the layered refactor altered protocol behavior.
#[test]
fn golden_coma_totals_unchanged_by_refactor() {
    let r = run_simulation(AppId::Fft.build(16, 42, Scale::SMOKE), &golden_params());
    assert_eq!(r.counts.total_reads(), 230_462);
    assert_eq!(r.counts.total_writes(), 76_834);
    assert_eq!(r.counts.read_node_misses(), 22_041);
    assert_eq!(r.traffic.read_bytes, 1_586_952);
    assert_eq!(r.traffic.write_bytes, 376);
    assert_eq!(r.traffic.replace_bytes, 184_192);
    assert_eq!(r.traffic.read_txns, 22_041);
    assert_eq!(r.traffic.write_txns, 31);
    assert_eq!(r.traffic.replace_txns, 5_824);
    assert_eq!(r.injections, 2_150);
    assert_eq!(r.ownership_migrations, 3_674);
    assert_eq!(r.shared_drops, 8_646);
    assert_eq!(r.cold_allocs, 51_202);
    assert_eq!(r.exec_time_ns, 7_521_891);
}

/// Byte-identical totals for a lock-heavy application (Radiosity: 16-way
/// critical sections plus barriers) at the paper's highest memory
/// pressure, captured before the hot-path data-structure overhaul. This
/// pins the synchronization and injection machinery, which the FFT
/// golden barely exercises.
#[test]
fn golden_radiosity_totals_unchanged() {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 2;
    params.machine.memory_pressure = MemoryPressure::MP_87;
    let r = run_simulation(AppId::Radiosity.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 128_031);
    assert_eq!(r.counts.total_writes(), 38_417);
    assert_eq!(r.counts.read_node_misses(), 22_209);
    assert_eq!(r.traffic.read_bytes, 1_599_048);
    assert_eq!(r.traffic.write_bytes, 96_296);
    assert_eq!(r.traffic.replace_bytes, 31_584);
    assert_eq!(r.traffic.read_txns, 22_209);
    assert_eq!(r.traffic.write_txns, 12_013);
    assert_eq!(r.traffic.replace_txns, 692);
    assert_eq!(r.injections, 407);
    assert_eq!(r.ownership_migrations, 285);
    assert_eq!(r.shared_drops, 2_547);
    assert_eq!(r.cold_allocs, 17_263);
    assert_eq!(r.exec_time_ns, 5_781_143);
}

/// Byte-identical totals for a 4-processors-per-node cluster (OceanNon),
/// pinning the intra-node peer-SLC machinery under a wide node.
#[test]
fn golden_ocean_4ppn_totals_unchanged() {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    let r = run_simulation(AppId::OceanNon.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 43_994);
    assert_eq!(r.counts.total_writes(), 14_678);
    assert_eq!(r.counts.read_node_misses(), 12_717);
    assert_eq!(r.traffic.read_bytes, 915_624);
    assert_eq!(r.traffic.write_bytes, 90_856);
    assert_eq!(r.traffic.replace_bytes, 49_960);
    assert_eq!(r.traffic.read_txns, 12_717);
    assert_eq!(r.traffic.write_txns, 11_341);
    assert_eq!(r.traffic.replace_txns, 725);
    assert_eq!(r.injections, 690);
    assert_eq!(r.ownership_migrations, 35);
    assert_eq!(r.shared_drops, 478);
    assert_eq!(r.cold_allocs, 14_646);
    assert_eq!(r.exec_time_ns, 3_597_413);
}

/// Byte-identical totals for Barnes at the paper's Fig-4 blowup point
/// (ppn=4, 87.5% MP, default 4-way AM): the configuration where conflict
/// misses dominate — replacement traffic and injections are at their
/// worst. Together with the 8-way twin below this pins the conflict-miss
/// recovery story byte-for-byte.
#[test]
fn golden_barnes_4ppn_mp87_4way_totals_unchanged() {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_87;
    params.machine.am_assoc = 4;
    let r = run_simulation(AppId::Barnes.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 64_892);
    assert_eq!(r.counts.total_writes(), 7_620);
    assert_eq!(r.counts.read_node_misses(), 17_679);
    assert_eq!(r.traffic.read_bytes, 1_272_888);
    assert_eq!(r.traffic.write_bytes, 27_096);
    assert_eq!(r.traffic.replace_bytes, 745_016);
    assert_eq!(r.traffic.read_txns, 17_679);
    assert_eq!(r.traffic.write_txns, 3_291);
    assert_eq!(r.traffic.replace_txns, 10_975);
    assert_eq!(r.injections, 10_269);
    assert_eq!(r.ownership_migrations, 706);
    assert_eq!(r.shared_drops, 13_922);
    assert_eq!(r.cold_allocs, 3_594);
    assert_eq!(r.exec_time_ns, 5_967_601);
}

/// The 8-way twin of the test above: doubling AM associativity at the
/// same pressure recovers most of the conflict-miss blowup (replacement
/// transactions drop 10 975 → 1 872, node misses 17 679 → 11 204),
/// which is the paper's §4.2 associativity argument in miniature.
#[test]
fn golden_barnes_4ppn_mp87_8way_totals_unchanged() {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_87;
    params.machine.am_assoc = 8;
    let r = run_simulation(AppId::Barnes.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 64_892);
    assert_eq!(r.counts.total_writes(), 7_620);
    assert_eq!(r.counts.read_node_misses(), 11_204);
    assert_eq!(r.traffic.read_bytes, 806_688);
    assert_eq!(r.traffic.write_bytes, 23_008);
    assert_eq!(r.traffic.replace_bytes, 122_496);
    assert_eq!(r.traffic.read_txns, 11_204);
    assert_eq!(r.traffic.write_txns, 2_820);
    assert_eq!(r.traffic.replace_txns, 1_872);
    assert_eq!(r.injections, 1_680);
    assert_eq!(r.ownership_migrations, 192);
    assert_eq!(r.shared_drops, 8_635);
    assert_eq!(r.cold_allocs, 3_594);
    assert_eq!(r.exec_time_ns, 3_439_349);
}

/// Byte-identical NUMA-baseline totals from the same capture.
#[test]
fn golden_numa_totals_unchanged_by_refactor() {
    let mut params = golden_params();
    params.memory_model = MemoryModel::Numa;
    let r = run_simulation(AppId::Fft.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 230_462);
    assert_eq!(r.counts.total_writes(), 76_834);
    assert_eq!(r.counts.read_node_misses(), 22_454);
    assert_eq!(r.traffic.read_bytes, 1_616_688);
    assert_eq!(r.traffic.write_bytes, 392);
    assert_eq!(r.traffic.replace_bytes, 72);
    assert_eq!(r.traffic.read_txns, 22_454);
    assert_eq!(r.traffic.write_txns, 33);
    assert_eq!(r.traffic.replace_txns, 1);
    assert_eq!(r.injections, 0);
    assert_eq!(r.exec_time_ns, 6_958_843);
}
