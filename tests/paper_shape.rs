//! Integration tests asserting the paper's qualitative results
//! ("the shape") at reduced trace scale.

use coma::prelude::*;

fn params(ppn: usize, mp: MemoryPressure) -> SimParams {
    let mut p = SimParams::default();
    p.machine.procs_per_node = ppn;
    p.machine.memory_pressure = mp;
    p
}

fn report(app: AppId, ppn: usize, mp: MemoryPressure) -> coma::stats::SimReport {
    run_simulation(app.build(16, 42, Scale::SMOKE), &params(ppn, mp))
}

/// Figure 2: clustering reduces the RNMr for *every* application at low
/// memory pressure, and 4-way clustering beats 2-way.
#[test]
fn fig2_clustering_reduces_rnm_for_all_applications() {
    for app in AppId::ALL {
        let r1 = report(app, 1, MemoryPressure::MP_6).rnm_rate();
        let r2 = report(app, 2, MemoryPressure::MP_6).rnm_rate();
        let r4 = report(app, 4, MemoryPressure::MP_6).rnm_rate();
        assert!(
            r2 < r1,
            "{app}: 2-way rel RNMr {:.1}% ≥ 100%",
            r2 / r1 * 100.0
        );
        assert!(r4 < r2, "{app}: 4-way {r4} not below 2-way {r2}");
    }
}

/// §4.2: at 6.25 % MP the caches are effectively infinite — zero
/// replacement traffic.
#[test]
fn no_replacements_at_infinite_caches() {
    for app in [AppId::Fft, AppId::Barnes, AppId::Radix, AppId::WaterSp] {
        let r = report(app, 1, MemoryPressure::MP_6);
        assert_eq!(r.traffic.replace_txns, 0, "{app} replaced at 6.25% MP");
        assert_eq!(r.injections, 0);
    }
}

/// Figures 3/4: traffic grows with memory pressure.
#[test]
fn traffic_grows_with_memory_pressure() {
    for app in [AppId::Fft, AppId::OceanNon, AppId::Volrend] {
        let low = report(app, 1, MemoryPressure::MP_6).traffic.total_bytes();
        let mid = report(app, 1, MemoryPressure::MP_75).traffic.total_bytes();
        let high = report(app, 1, MemoryPressure::MP_87).traffic.total_bytes();
        assert!(mid > low, "{app}: traffic not increasing 6.25→75");
        assert!(high > mid, "{app}: traffic not increasing 75→87.5");
    }
}

/// Figure 3: clustering reduces total traffic up to 81.25 % MP.
#[test]
fn clustering_reduces_traffic_up_to_81() {
    for app in [
        AppId::Cholesky,
        AppId::Fft,
        AppId::OceanCont,
        AppId::WaterN2,
    ] {
        for mp in [MemoryPressure::MP_50, MemoryPressure::MP_81] {
            let t1 = report(app, 1, mp).traffic.total_bytes();
            let t4 = report(app, 4, mp).traffic.total_bytes();
            assert!(t4 < t1, "{app} at {mp}: 4p traffic {t4} ≥ 1p {t1}");
        }
    }
}

/// Figure 4: 8-way associativity cuts the 87.5 %-MP conflict traffic for
/// the wide-replication applications.
#[test]
fn eight_way_associativity_recovers_conflict_misses() {
    for app in [AppId::Volrend, AppId::LuCont, AppId::Barnes] {
        let p4 = params(1, MemoryPressure::MP_87);
        let mut p8 = params(1, MemoryPressure::MP_87);
        p8.machine.am_assoc = 8;
        let t4 = run_simulation(app.build(16, 42, Scale::SMOKE), &p4)
            .traffic
            .total_bytes();
        let t8 = run_simulation(app.build(16, 42, Scale::SMOKE), &p8)
            .traffic
            .total_bytes();
        assert!(
            t8 < t4,
            "{app}: 8-way traffic {t8} not below 4-way {t4} at 87.5% MP"
        );
    }
}

/// Figure 5: at 81.25 % MP with doubled DRAM bandwidth, 4-way clustering
/// improves execution time for the well-behaved applications, while
/// LU-non — the paper's contention-dominated exception — degrades.
#[test]
fn fig5_clustering_helps_except_contention_dominated() {
    let lat = LatencyConfig::paper_double_dram();
    let exec = |app: AppId, ppn: usize| {
        let mut p = params(ppn, MemoryPressure::MP_81);
        p.latency = lat.clone();
        run_simulation(app.build(16, 42, Scale::SMOKE), &p).exec_time_ns
    };
    for app in [
        AppId::Barnes,
        AppId::Fmm,
        AppId::Radiosity,
        AppId::Volrend,
        AppId::OceanNon,
    ] {
        assert!(
            exec(app, 4) < exec(app, 1),
            "{app}: clustering should win at 81.25% MP"
        );
    }
    // The paper's exception.
    assert!(
        exec(AppId::LuNon, 4) > exec(AppId::LuNon, 1),
        "LU-non should be dominated by intra-node contention"
    );
}

/// §4.3: halving the global bus bandwidth makes clustering more
/// attractive (the remote penalty grows).
#[test]
fn half_bus_bandwidth_favours_clustering() {
    let ratio = |lat: LatencyConfig| {
        let mut p1 = params(1, MemoryPressure::MP_50);
        p1.latency = lat.clone();
        let mut p4 = params(4, MemoryPressure::MP_50);
        p4.latency = lat;
        let t1 = run_simulation(AppId::Fft.build(16, 42, Scale::SMOKE), &p1).exec_time_ns;
        let t4 = run_simulation(AppId::Fft.build(16, 42, Scale::SMOKE), &p4).exec_time_ns;
        t4 as f64 / t1 as f64
    };
    let normal = ratio(LatencyConfig::paper_double_dram());
    let half_bus = ratio(LatencyConfig::paper_half_bus());
    assert!(
        half_bus < normal,
        "halved bus should favour clustering: {half_bus:.3} !< {normal:.3}"
    );
}

/// §4.3: FFT is the most pressure-sensitive application going *down* from
/// 50 % to 6.25 % MP, and the gain is small (paper: 4.2 %) — i.e. 50 % MP
/// is a sensible baseline.
#[test]
fn little_to_gain_below_50_percent_pressure() {
    for app in [AppId::Fft, AppId::WaterN2, AppId::OceanCont] {
        let t50 = report(app, 1, MemoryPressure::MP_50).exec_time_ns as f64;
        let t6 = report(app, 1, MemoryPressure::MP_6).exec_time_ns as f64;
        let gain = (t50 - t6) / t50;
        assert!(
            gain < 0.25,
            "{app}: going to 6.25% MP should gain little, got {:.1}%",
            gain * 100.0
        );
    }
}
