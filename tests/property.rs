//! Randomized property tests on the core invariants, spanning the
//! protocol, cache and simulation crates, driven by the in-repo
//! deterministic RNG (`coma::types::Rng64`).

use coma::cache::{AcceptPolicy, AmState, VictimPolicy};
use coma::protocol::CoherenceEngine;
use coma::types::{LineNum, MachineConfig, MemoryPressure, ProcId, Rng64};

fn engine(ppn: usize, mp_num: u32) -> CoherenceEngine {
    let cfg = MachineConfig {
        n_procs: 8,
        procs_per_node: ppn,
        memory_pressure: MemoryPressure::new(mp_num, 16),
        ..Default::default()
    };
    let geom = cfg.geometry(128 * 1024).unwrap();
    CoherenceEngine::new(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
    )
}

/// After any access sequence: exactly one responsible copy per live
/// line, sharers consistent, inclusion intact (the full invariant
/// checker), and — because total AM capacity covers the working set —
/// no line is ever lost.
#[test]
fn protocol_invariants_under_random_storm() {
    let mut rng = Rng64::new(0x570);
    for _case in 0..24 {
        let ppn = [1usize, 2, 4][rng.below(3) as usize];
        let mp_num = rng.range(4, 16) as u32;
        let n_ops = rng.range(500, 3000);
        let mut e = engine(ppn, mp_num);
        let mut case_rng = Rng64::new(rng.next_u64());
        let mut touched = std::collections::HashSet::new();
        for _ in 0..n_ops {
            let p = ProcId(case_rng.below(8) as u16);
            let l = LineNum(case_rng.below(1500));
            touched.insert(l);
            if case_rng.chance(0.4) {
                e.write(p, l);
            } else {
                e.read(p, l);
            }
        }
        e.check_invariants().unwrap();
        // Conservation: every touched line is still live somewhere
        // (page-outs can only occur above 100% pressure).
        for l in touched {
            assert!(e.directory().contains(l), "line {l:?} lost");
        }
    }
}

/// A read always leaves the line readable at the reader's node, and a
/// write always leaves it Exclusive there.
#[test]
fn accesses_establish_required_state() {
    let mut rng = Rng64::new(0xACCE55);
    for _case in 0..24 {
        let mut e = engine(2, 10);
        let n_ops = rng.range(1, 300);
        for _ in 0..n_ops {
            let proc = ProcId(rng.below(8) as u16);
            let line = LineNum(rng.below(800));
            let node = proc.node(2).as_usize();
            if rng.chance(0.5) {
                e.write(proc, line);
                assert_eq!(e.node(node).am.state(line), AmState::Exclusive);
            } else {
                e.read(proc, line);
                assert!(e.node(node).am.state(line).is_valid());
            }
        }
    }
}

/// RNMr is always a valid probability and total counts match the
/// number of issued operations.
#[test]
fn simulation_counts_are_conserved() {
    use coma::prelude::*;
    use coma::workloads::{Op, OpStream};

    let mut rng = Rng64::new(0xC0);
    for _case in 0..6 {
        let seed = rng.next_u64();
        let ppn = [1usize, 2, 4][rng.below(3) as usize];
        let app = AppId::WaterSp;
        // Count the references the generator will emit.
        let mut wl = app.build(16, seed, Scale::SMOKE);
        let mut expect_reads = 0u64;
        let mut expect_writes = 0u64;
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                match op {
                    Op::Read(_) => expect_reads += 1,
                    Op::Write(_) => expect_writes += 1,
                    _ => {}
                }
            }
        }
        // Run the same workload.
        let mut params = SimParams::default();
        params.machine.procs_per_node = ppn;
        let r = run_simulation(app.build(16, seed, Scale::SMOKE), &params);
        assert!(r.rnm_rate() >= 0.0 && r.rnm_rate() <= 1.0);
        // The simulator adds sync-line accesses (locks, barriers) on top
        // of the data references, never removes any.
        assert!(r.counts.total_reads() >= expect_reads);
        assert!(r.counts.total_writes() >= expect_writes);
    }
}

/// The replication-threshold formula is always a valid fraction that
/// increases with associativity and with clustering.
#[test]
fn replication_threshold_properties() {
    use coma::types::full_replication_threshold;
    let mut rng = Rng64::new(0xF2AC);
    for _case in 0..64 {
        let nodes = rng.range(2, 65) as u32;
        let assoc = rng.range(2, 33) as u32;
        if nodes * assoc < nodes {
            continue;
        }
        let (n, d) = full_replication_threshold(nodes, assoc);
        assert!(n <= d && n > 0);
        let f = n as f64 / d as f64;
        let (n2, d2) = full_replication_threshold(nodes, assoc * 2);
        assert!(n2 as f64 / d2 as f64 > f);
        if nodes.is_multiple_of(2) {
            let (n3, d3) = full_replication_threshold(nodes / 2, assoc);
            assert!(n3 as f64 / d3 as f64 > f);
        }
    }
}
