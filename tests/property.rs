//! Property-based tests (proptest) on the core invariants, spanning the
//! protocol, cache and simulation crates.

use coma::cache::{AcceptPolicy, AmState, VictimPolicy};
use coma::protocol::CoherenceEngine;
use coma::types::{LineNum, MachineConfig, MemoryPressure, ProcId};
use proptest::prelude::*;

fn engine(ppn: usize, mp_num: u32) -> CoherenceEngine {
    let cfg = MachineConfig {
        n_procs: 8,
        procs_per_node: ppn,
        memory_pressure: MemoryPressure::new(mp_num, 16),
        ..Default::default()
    };
    let geom = cfg.geometry(128 * 1024).unwrap();
    CoherenceEngine::new(
        geom,
        VictimPolicy::SharedFirst,
        AcceptPolicy::InvalidThenShared,
        true,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After any access sequence: exactly one responsible copy per live
    /// line, sharers consistent, inclusion intact (the full invariant
    /// checker), and — because total AM capacity covers the working set —
    /// no line is ever lost.
    #[test]
    fn protocol_invariants_under_random_storm(
        ppn in prop::sample::select(vec![1usize, 2, 4]),
        mp_num in 4u32..=15,
        seed in any::<u64>(),
        n_ops in 500usize..3000,
    ) {
        let mut e = engine(ppn, mp_num);
        let mut rng = coma::types::Rng64::new(seed);
        let mut touched = std::collections::HashSet::new();
        for _ in 0..n_ops {
            let p = ProcId(rng.below(8) as u16);
            let l = LineNum(rng.below(1500));
            touched.insert(l);
            if rng.chance(0.4) {
                e.write(p, l);
            } else {
                e.read(p, l);
            }
        }
        e.check_invariants().map_err(TestCaseError::fail)?;
        // Conservation: every touched line is still live somewhere
        // (page-outs can only occur above 100% pressure).
        for l in touched {
            prop_assert!(e.directory().contains(l), "line {l:?} lost");
        }
    }

    /// A read always leaves the line readable at the reader's node, and a
    /// write always leaves it Exclusive there.
    #[test]
    fn accesses_establish_required_state(
        seed in any::<u64>(),
        ops in prop::collection::vec((0u16..8, 0u64..800, any::<bool>()), 1..300),
    ) {
        let mut e = engine(2, 10);
        let _ = seed;
        for (p, l, is_write) in ops {
            let proc = ProcId(p);
            let line = LineNum(l);
            let node = proc.node(2).as_usize();
            if is_write {
                e.write(proc, line);
                prop_assert_eq!(e.node(node).am.state(line), AmState::Exclusive);
            } else {
                e.read(proc, line);
                prop_assert!(e.node(node).am.state(line).is_valid());
            }
        }
    }

    /// RNMr is always a valid probability and total counts match the
    /// number of issued operations.
    #[test]
    fn simulation_counts_are_conserved(
        seed in any::<u64>(),
        ppn in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        use coma::prelude::*;
        use coma::workloads::{Op, OpStream};

        let app = AppId::WaterSp;
        // Count the references the generator will emit.
        let mut wl = app.build(16, seed, Scale::SMOKE);
        let mut expect_reads = 0u64;
        let mut expect_writes = 0u64;
        for s in &mut wl.streams {
            while let Some(op) = s.next_op() {
                match op {
                    Op::Read(_) => expect_reads += 1,
                    Op::Write(_) => expect_writes += 1,
                    _ => {}
                }
            }
        }
        // Run the same workload.
        let mut params = SimParams::default();
        params.machine.procs_per_node = ppn;
        let r = run_simulation(app.build(16, seed, Scale::SMOKE), &params);
        prop_assert!(r.rnm_rate() >= 0.0 && r.rnm_rate() <= 1.0);
        // The simulator adds sync-line accesses (locks, barriers) on top
        // of the data references, never removes any.
        prop_assert!(r.counts.total_reads() >= expect_reads);
        prop_assert!(r.counts.total_writes() >= expect_writes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The replication-threshold formula is always a valid fraction that
    /// increases with associativity and with clustering.
    #[test]
    fn replication_threshold_properties(nodes in 2u32..=64, assoc in 2u32..=32) {
        use coma::types::full_replication_threshold;
        prop_assume!(nodes * assoc > nodes - 1);
        let (n, d) = full_replication_threshold(nodes, assoc);
        prop_assert!(n <= d && n > 0);
        let f = n as f64 / d as f64;
        let (n2, d2) = full_replication_threshold(nodes, assoc * 2);
        prop_assert!(n2 as f64 / d2 as f64 > f);
        if nodes % 2 == 0 {
            let (n3, d3) = full_replication_threshold(nodes / 2, assoc);
            prop_assert!(n3 as f64 / d3 as f64 > f);
        }
    }
}
