//! Differential harness for the sweep engine: a parallel sweep must be
//! **byte-identical** to a serial one — same columnar store, same JSON
//! sidecar — because the scheduler only changes *who* computes a cell,
//! never *what* the cell computes or where its result lands.
//!
//! Run in CI at smoke scale (`scripts/check.sh`); `COMA_THREADS` has no
//! effect here because the contexts pin `threads` explicitly.

use coma_experiments::{run_sweep, ExpCtx, RunSpec};
use coma_types::MemoryPressure;
use coma_workloads::{AppId, Scale};

fn ctx(dir: &str, threads: usize) -> ExpCtx {
    let out = std::env::temp_dir()
        .join("coma-sweep-determinism")
        .join(dir);
    let _ = std::fs::remove_dir_all(&out);
    ExpCtx {
        scale: Scale::SMOKE,
        seed: 42,
        out_dir: out,
        threads,
        no_cache: true,
    }
}

fn matrix() -> Vec<RunSpec> {
    [AppId::Fft, AppId::OceanNon, AppId::WaterN2]
        .into_iter()
        .flat_map(|app| {
            [MemoryPressure::MP_50, MemoryPressure::MP_87].map(|mp| RunSpec::new(app, 4, mp))
        })
        .collect()
}

fn store_files(ctx: &ExpCtx, name: &str) -> (Vec<u8>, Vec<u8>) {
    let dir = ctx.out_dir.join("store");
    let cols = std::fs::read(dir.join(format!("{name}.cols"))).expect("store written");
    let json = std::fs::read(dir.join(format!("{name}.json"))).expect("sidecar written");
    (cols, json)
}

/// The tentpole differential: serial vs 4 workers, twice, byte-compared.
#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let specs = matrix();
    for repeat in 0..2 {
        let serial_ctx = ctx(&format!("serial-{repeat}"), 1);
        let parallel_ctx = ctx(&format!("parallel-{repeat}"), 4);
        let s = run_sweep(&serial_ctx, "det", &specs);
        let p = run_sweep(&parallel_ctx, "det", &specs);
        assert_eq!(s.n_rows(), specs.len());
        assert_eq!(p.n_rows(), specs.len());
        let (s_cols, s_json) = store_files(&serial_ctx, "det");
        let (p_cols, p_json) = store_files(&parallel_ctx, "det");
        assert_eq!(
            s_cols, p_cols,
            "repeat {repeat}: columnar store differs between 1 and 4 workers"
        );
        assert_eq!(
            s_json, p_json,
            "repeat {repeat}: JSON sidecar differs between 1 and 4 workers"
        );
    }
}

/// Two repeats of the same parallel sweep are themselves byte-identical
/// (no run-to-run nondeterminism from scheduling order).
#[test]
fn repeated_parallel_sweeps_are_stable() {
    let specs = matrix();
    let a_ctx = ctx("stable-a", 4);
    let b_ctx = ctx("stable-b", 4);
    run_sweep(&a_ctx, "stable", &specs);
    run_sweep(&b_ctx, "stable", &specs);
    assert_eq!(store_files(&a_ctx, "stable"), store_files(&b_ctx, "stable"));
}

/// A panicking cell fails alone: its row is masked null in the store and
/// carries the panic message in the sidecar, while every other cell
/// completes — under both serial and parallel scheduling, identically.
#[test]
fn failed_cell_is_isolated_and_deterministic() {
    let mut specs = matrix();
    // A degenerate geometry: `run_simulation` rejects it with a panic.
    specs.insert(
        2,
        RunSpec::new(AppId::Fft, 1, MemoryPressure::MP_50)
            .tweak(|p| p.machine.slc_ws_ratio = u64::MAX),
    );
    let serial_ctx = ctx("fail-serial", 1);
    let parallel_ctx = ctx("fail-parallel", 4);
    let s = run_sweep(&serial_ctx, "fail", &specs);
    let p = run_sweep(&parallel_ctx, "fail", &specs);
    for sweep in [&s, &p] {
        assert_eq!(sweep.failed, 1);
        for row in 0..specs.len() {
            assert_eq!(sweep.ok(row), row != 2, "row {row}");
        }
        assert!(sweep
            .error(2)
            .expect("failure message recorded")
            .contains("invalid simulation configuration"));
        // The store masks the failed row, and only that row.
        let file = sweep.store();
        assert!(!file.is_valid("exec_time_ns", 2));
        assert!(file.is_valid("exec_time_ns", 0));
        assert_eq!(file.get_u64("exec_time_ns", 2), None);
    }
    assert_eq!(
        store_files(&serial_ctx, "fail"),
        store_files(&parallel_ctx, "fail")
    );
}

/// `run_sweep` names land where external tooling expects them.
#[test]
fn store_paths_follow_the_documented_layout() {
    let c = ctx("layout", 2);
    let specs = vec![RunSpec::new(AppId::WaterN2, 1, MemoryPressure::MP_50)];
    run_sweep(&c, "layout", &specs);
    assert!(c.out_dir.join("store").join("layout.cols").is_file());
    assert!(c.out_dir.join("store").join("layout.json").is_file());
}
