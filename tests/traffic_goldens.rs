//! Golden regressions for the production-shaped traffic families:
//! byte-identical report snapshots (like the FFT/Barnes goldens in
//! `memory_system.rs`) pinning both generators under both memory models.
//! Any change here means a generator's op stream or the protocol
//! machinery it exercises changed behavior.

use coma::sim::{run_simulation, MemoryModel, SimParams};
use coma::types::MemoryPressure;
use coma::workloads::{AppId, Scale};

/// KV-store parameters from the issue: 2 procs/node at 81.25 % MP —
/// enough pressure that replicas of the hot set start competing with
/// masters for AM capacity.
fn kv_params() -> SimParams {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 2;
    params.machine.memory_pressure = MemoryPressure::MP_81;
    params
}

/// Byte-identical COMA totals for the Zipf key-value family
/// (16 procs, seed 42, SMOKE). Pins the shard-lock transaction path and
/// the hot-line replication behavior.
#[test]
fn golden_kv_zipf_coma_totals() {
    let r = run_simulation(AppId::KvZipf.build(16, 42, Scale::SMOKE), &kv_params());
    assert_eq!(r.counts.total_reads(), 134_436);
    assert_eq!(r.counts.total_writes(), 19_232);
    assert_eq!(r.counts.read_node_misses(), 62_922);
    assert_eq!(r.traffic.read_bytes, 4_530_384);
    assert_eq!(r.traffic.write_bytes, 94_128);
    assert_eq!(r.traffic.replace_bytes, 93_840);
    assert_eq!(r.traffic.read_txns, 62_922);
    assert_eq!(r.traffic.write_txns, 11_750);
    assert_eq!(r.traffic.replace_txns, 2_290);
    assert_eq!(r.injections, 1_180);
    assert_eq!(r.ownership_migrations, 1_110);
    assert_eq!(r.shared_drops, 30_271);
    assert_eq!(r.cold_allocs, 12_867);
    assert_eq!(r.exec_time_ns, 14_728_216);
}

/// The NUMA twin of the test above: same trace, first-touch homes. The
/// hot keys pile onto their home nodes, so node misses rise 62 922 →
/// 91 883 — the replication advantage the EXPERIMENTS.md traffic section
/// quantifies, pinned here byte-for-byte.
#[test]
fn golden_kv_zipf_numa_totals() {
    let mut params = kv_params();
    params.memory_model = MemoryModel::Numa;
    let r = run_simulation(AppId::KvZipf.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 134_436);
    assert_eq!(r.counts.total_writes(), 19_232);
    assert_eq!(r.counts.read_node_misses(), 91_883);
    assert_eq!(r.traffic.read_bytes, 6_615_576);
    assert_eq!(r.traffic.write_bytes, 96_352);
    assert_eq!(r.traffic.replace_bytes, 187_488);
    assert_eq!(r.traffic.read_txns, 91_883);
    assert_eq!(r.traffic.write_txns, 12_036);
    assert_eq!(r.traffic.replace_txns, 2_604);
    assert_eq!(r.injections, 0);
    assert_eq!(r.ownership_migrations, 0);
    assert_eq!(r.shared_drops, 0);
    assert_eq!(r.cold_allocs, 0);
    assert_eq!(r.exec_time_ns, 18_434_619);
}

/// Graph parameters from the issue: 4-processor nodes at the paper's
/// highest pressure (87.5 % MP) — the worst case for attraction
/// memories driving near-uniform traffic.
fn graph_params() -> SimParams {
    let mut params = SimParams::default();
    params.machine.procs_per_node = 4;
    params.machine.memory_pressure = MemoryPressure::MP_87;
    params
}

/// Byte-identical COMA totals for the irregular-graph family
/// (16 procs, seed 42, SMOKE): scattered claims, streamed CSR rows and
/// dependent pointer chases under a wide node.
#[test]
fn golden_graph_bfs_coma_4ppn_totals() {
    let r = run_simulation(AppId::GraphBfs.build(16, 42, Scale::SMOKE), &graph_params());
    assert_eq!(r.counts.total_reads(), 291_655);
    assert_eq!(r.counts.total_writes(), 64_871);
    assert_eq!(r.counts.read_node_misses(), 76_933);
    assert_eq!(r.traffic.read_bytes, 5_539_176);
    assert_eq!(r.traffic.write_bytes, 394_160);
    assert_eq!(r.traffic.replace_bytes, 64_784);
    assert_eq!(r.traffic.read_txns, 76_933);
    assert_eq!(r.traffic.write_txns, 44_990);
    assert_eq!(r.traffic.replace_txns, 986);
    assert_eq!(r.injections, 889);
    assert_eq!(r.ownership_migrations, 97);
    assert_eq!(r.shared_drops, 1_611);
    assert_eq!(r.cold_allocs, 24_208);
    assert_eq!(r.exec_time_ns, 28_380_540);
}

/// The NUMA twin: with no replication at all, nearly every probe of a
/// remote vertex goes to its home (node misses 76 933 → 144 575), and
/// replacement traffic through the fixed home mapping explodes.
#[test]
fn golden_graph_bfs_numa_4ppn_totals() {
    let mut params = graph_params();
    params.memory_model = MemoryModel::Numa;
    let r = run_simulation(AppId::GraphBfs.build(16, 42, Scale::SMOKE), &params);
    assert_eq!(r.counts.total_reads(), 291_655);
    assert_eq!(r.counts.total_writes(), 64_871);
    assert_eq!(r.counts.read_node_misses(), 144_575);
    assert_eq!(r.traffic.read_bytes, 10_409_400);
    assert_eq!(r.traffic.write_bytes, 495_416);
    assert_eq!(r.traffic.replace_bytes, 1_008_072);
    assert_eq!(r.traffic.read_txns, 144_575);
    assert_eq!(r.traffic.write_txns, 57_319);
    assert_eq!(r.traffic.replace_txns, 14_001);
    assert_eq!(r.injections, 0);
    assert_eq!(r.ownership_migrations, 0);
    assert_eq!(r.shared_drops, 0);
    assert_eq!(r.cold_allocs, 0);
    assert_eq!(r.exec_time_ns, 33_067_463);
}
